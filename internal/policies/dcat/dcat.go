// Package dcat reimplements the dCAT baseline (Xu et al., EuroSys'18 [90]
// in the paper's numbering): dynamic last-level-cache way partitioning
// that improves system throughput by classifying co-located jobs into
// cache "donors" and "receivers" and shifting ways from the former to the
// latter.
//
// As in the original, only the LLC is managed — cores and memory
// bandwidth stay at their initial (equal) partition — and decisions are
// made by measuring whether a trial reallocation actually improved
// throughput, reverting it when it did not. Phase changes re-open the
// search because a kept improvement resets the candidate ordering and a
// baseline reset clears all trial state.
package dcat

import (
	"fmt"
	"sort"

	"satori/internal/policies/common"
	"satori/internal/policy"
	"satori/internal/resource"
)

type state int

const (
	measuring state = iota // accumulating the incumbent's score
	trialing               // accumulating a trial move's score
	idle                   // local optimum reached; waiting to re-probe
)

// move is a candidate way transfer.
type move struct{ donor, receiver int }

// Policy is the dCAT way-reallocation engine.
type Policy struct {
	space  *resource.Space
	llcRow int

	epoch     *common.Epoch
	st        state
	baseScore float64
	saved     resource.Config // configuration to revert to if the trial fails
	queue     []move          // candidate moves, most promising first
	idleLeft  int
	idleSpan  int
}

// Options tunes the policy.
type Options struct {
	// EpochTicks is how many 100 ms intervals each measurement spans
	// (default 5 = 0.5 s, matching dCAT's sub-second reaction time).
	EpochTicks int
	// IdleEpochs is how long to sit at a local optimum before
	// re-probing (default 10 epochs).
	IdleEpochs int
}

// New builds a dCAT policy over space. The space must include an LLCWays
// resource.
func New(space *resource.Space, opt Options) (*Policy, error) {
	row := -1
	for i, r := range space.Resources {
		if r.Kind == resource.LLCWays {
			row = i
		}
	}
	if row < 0 {
		return nil, fmt.Errorf("dcat: space has no %s resource", resource.LLCWays)
	}
	if opt.EpochTicks <= 0 {
		opt.EpochTicks = 5
	}
	if opt.IdleEpochs <= 0 {
		opt.IdleEpochs = 10
	}
	return &Policy{
		space:    space,
		llcRow:   row,
		epoch:    common.NewEpoch(opt.EpochTicks),
		idleSpan: opt.IdleEpochs * opt.EpochTicks,
	}, nil
}

// Name implements policy.Policy.
func (p *Policy) Name() string { return "dcat" }

// score is the throughput objective dCAT maximizes.
func (p *Policy) score(obs policy.Observation) float64 { return obs.Throughput }

// rebuildQueue orders candidate way moves by expected benefit: receivers
// are the most-slowed jobs (likely cache-starved), donors the
// least-slowed (their ways are cheap to give up) — the donor/receiver
// classification at the heart of dCAT.
func (p *Policy) rebuildQueue(speedups []float64, current resource.Config) {
	type ranked struct {
		job int
		sp  float64
	}
	jobs := make([]ranked, len(speedups))
	for j, s := range speedups {
		jobs[j] = ranked{job: j, sp: s}
	}
	byNeed := append([]ranked(nil), jobs...) // ascending speedup: needy first
	sort.Slice(byNeed, func(a, b int) bool { return byNeed[a].sp < byNeed[b].sp })
	byWealth := append([]ranked(nil), jobs...) // descending speedup: donors first
	sort.Slice(byWealth, func(a, b int) bool { return byWealth[a].sp > byWealth[b].sp })

	p.queue = p.queue[:0]
	for _, recv := range byNeed {
		for _, don := range byWealth {
			if don.job == recv.job {
				continue
			}
			if current.Alloc[p.llcRow][don.job] <= 1 {
				continue // cannot drop below the 1-way floor
			}
			p.queue = append(p.queue, move{donor: don.job, receiver: recv.job})
		}
	}
}

// Decide implements policy.Policy.
func (p *Policy) Decide(obs policy.Observation, current resource.Config) resource.Config {
	if obs.BaselineReset {
		// Job mix or baseline changed: drop all learned state.
		p.st = measuring
		p.epoch.Reset()
		p.queue = nil
		p.idleLeft = 0
	}
	switch p.st {
	case idle:
		p.idleLeft--
		if p.idleLeft <= 0 {
			p.st = measuring
			p.epoch.Reset()
		}
		return current

	case measuring:
		mean, done := p.epoch.Add(p.score(obs))
		if !done {
			return current
		}
		p.baseScore = mean
		p.rebuildQueue(obs.Speedups, current)
		return p.startTrial(current)

	case trialing:
		mean, done := p.epoch.Add(p.score(obs))
		if !done {
			return current
		}
		if mean > p.baseScore {
			// Keep the improvement and continue climbing from it.
			p.baseScore = mean
			p.rebuildQueue(obs.Speedups, current)
			return p.startTrial(current)
		}
		// Revert and try the next candidate pair.
		return p.startTrial(p.saved)
	}
	return current
}

// startTrial applies the next queued move on top of base, or goes idle
// when no candidates remain.
func (p *Policy) startTrial(base resource.Config) resource.Config {
	for len(p.queue) > 0 {
		m := p.queue[0]
		p.queue = p.queue[1:]
		next, ok := p.space.Move(base, p.llcRow, m.donor, m.receiver)
		if !ok {
			continue
		}
		p.saved = base.Clone()
		p.st = trialing
		p.epoch.Reset()
		return next
	}
	p.st = idle
	p.idleLeft = p.idleSpan
	return base
}
