package oracle

import (
	"math"
	"testing"

	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/workloads"
)

// smallSim builds a 2-job simulator whose space (9·10·9 = 810 configs) is
// small enough for exhaustive search.
func smallSim(t *testing.T) *sim.Simulator {
	t.Helper()
	ps := workloads.ECP()
	s, err := sim.New(sim.DefaultMachine(), []*sim.Profile{ps[0], ps[3]}, sim.Options{Seed: 5, NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bigSim builds a 5-job simulator (3.3M configs) forcing hill-climb mode.
func bigSim(t *testing.T) *sim.Simulator {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: 5, NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGoalWeightsAndNames(t *testing.T) {
	cases := []struct {
		g      Goal
		wT, wF float64
		name   string
	}{
		{Balanced, 0.5, 0.5, "balanced-oracle"},
		{Throughput, 1, 0, "throughput-oracle"},
		{Fairness, 0, 1, "fairness-oracle"},
	}
	for _, c := range cases {
		wT, wF := c.g.Weights()
		if wT != c.wT || wF != c.wF || c.g.String() != c.name {
			t.Errorf("goal %v: (%g,%g,%s)", c.g, wT, wF, c.g.String())
		}
	}
}

func TestExhaustiveBeatsEqualSplit(t *testing.T) {
	s := smallSim(t)
	sr := NewSearcher(s, Options{Seed: 1, ThroughputMetric: metrics.SumIPS})
	if !sr.small {
		t.Fatal("810-config space not searched exhaustively")
	}
	eq := s.Space().EqualSplit()
	eqVal := sr.objective(eq, 1, 0)
	best, val := sr.Search(1, 0)
	if err := s.Space().Validate(best); err != nil {
		t.Fatalf("oracle produced invalid config: %v", err)
	}
	if val < eqVal {
		t.Errorf("oracle objective %g below equal split %g", val, eqVal)
	}
}

func TestExhaustiveIsGlobalOptimum(t *testing.T) {
	s := smallSim(t)
	sr := NewSearcher(s, Options{Seed: 1, ThroughputMetric: metrics.SumIPS})
	_, val := sr.Search(0.5, 0.5)
	// Verify no configuration scores higher (re-enumeration).
	worst := math.Inf(1)
	s.Space().Enumerate(func(c resource.Config) bool {
		v := sr.objective(c, 0.5, 0.5)
		if v > val+1e-12 {
			t.Fatalf("config %s beats the oracle: %g > %g", c.Key(), v, val)
		}
		if v < worst {
			worst = v
		}
		return true
	})
	if val <= worst {
		t.Error("oracle no better than the worst configuration")
	}
}

func TestHillClimbApproachesExhaustive(t *testing.T) {
	s := smallSim(t)
	exact := NewSearcher(s, Options{Seed: 1, ThroughputMetric: metrics.SumIPS})
	_, exactVal := exact.Search(0.5, 0.5)
	// Force hill-climb mode on the same space.
	climb := NewSearcher(s, Options{Seed: 1, ExactLimit: 1, ThroughputMetric: metrics.SumIPS})
	if climb.small {
		t.Fatal("ExactLimit=1 did not force hill-climb mode")
	}
	_, climbVal := climb.Search(0.5, 0.5)
	if climbVal < 0.98*exactVal {
		t.Errorf("hill climb %g too far from exhaustive optimum %g", climbVal, exactVal)
	}
}

func TestHillClimbOnLargeSpace(t *testing.T) {
	s := bigSim(t)
	sr := NewSearcher(s, Options{Seed: 1, ThroughputMetric: metrics.SumIPS})
	if sr.small {
		t.Fatal("3.3M-config space marked exhaustive")
	}
	eqVal := sr.objective(s.Space().EqualSplit(), 0.5, 0.5)
	best, val := sr.Search(0.5, 0.5)
	if err := s.Space().Validate(best); err != nil {
		t.Fatalf("invalid config: %v", err)
	}
	if val <= eqVal {
		t.Errorf("hill climb did not improve on the equal split: %g vs %g", val, eqVal)
	}
}

func TestThroughputVsFairnessConflict(t *testing.T) {
	// The structural premise of the paper (Fig. 2): the two single-goal
	// optima differ, and each underperforms at the other goal.
	s := bigSim(t)
	sr := NewSearcher(s, Options{Seed: 2, ThroughputMetric: metrics.SumIPS})
	tOpt, _ := sr.Search(1, 0)
	fOpt, _ := sr.Search(0, 1)
	if tOpt.Equal(fOpt) {
		t.Fatal("throughput and fairness optima identical; no conflict to study")
	}
	tT := sr.objective(tOpt, 1, 0)
	fT := sr.objective(fOpt, 1, 0)
	tF := sr.objective(tOpt, 0, 1)
	fF := sr.objective(fOpt, 0, 1)
	if fT >= tT {
		t.Errorf("fairness-optimal config has throughput %g >= throughput-optimal %g", fT, tT)
	}
	if tF >= fF {
		t.Errorf("throughput-optimal config has fairness %g >= fairness-optimal %g", tF, fF)
	}
}

func TestPolicyCachesPerPhase(t *testing.T) {
	s := smallSim(t)
	p := New(Balanced, s, Options{Seed: 3, ThroughputMetric: metrics.SumIPS})
	if p.Name() != "balanced-oracle" {
		t.Error("name wrong")
	}
	cur := s.Space().EqualSplit()
	first := p.Decide(policy.Observation{Tick: 1}, cur)
	// Same phase state: the cached config must be returned.
	second := p.Decide(policy.Observation{Tick: 2}, cur)
	if !first.Equal(second) {
		t.Error("oracle re-searched within an unchanged phase state")
	}
	if len(p.cache) != 1 {
		t.Errorf("cache has %d entries, want 1", len(p.cache))
	}
	// Advance across a phase boundary and confirm the oracle reacts.
	for i := 0; i < 400; i++ {
		s.Step()
	}
	third := p.Decide(policy.Observation{Tick: 3}, cur)
	if err := s.Space().Validate(third); err != nil {
		t.Fatalf("invalid config after phase change: %v", err)
	}
	if len(p.cache) < 2 {
		t.Error("phase change did not trigger a fresh search")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.ExactLimit != 20000 || o.Restarts != 4 || o.Probes != 256 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
