// Package oracle implements the Brute-Force Search (Oracle) reference of
// Sec. IV: an offline, practically-infeasible strategy with perfect
// knowledge that picks, at every decision point, the configuration
// maximizing a weighted combination of throughput and fairness. The three
// paper variants are provided: Throughput Oracle (W_T=1, W_F=0), Fairness
// Oracle (W_T=0, W_F=1) and Balanced Oracle (0.5/0.5) — the ceiling all
// results are normalized against.
//
// The oracle evaluates the simulator's noise-free performance model
// directly ("oracle knowledge"). Small spaces are searched exhaustively;
// large ones (a 5-job × 3-resource PARSEC mix has ~3.3M configurations)
// use multi-restart steepest-ascent hill climbing over the one-unit-move
// neighborhood with a random-probe pool, which on the simulator's smooth
// roofline model lands within noise of the exhaustive optimum (verified
// in the package tests). Results are cached per joint program phase, so
// the search only reruns when some job changes phase — the paper's own
// observation that the optimum moves with phases.
package oracle

import (
	"math"
	"strconv"
	"strings"

	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/stats"
)

// Goal selects the oracle variant.
type Goal int

const (
	// Balanced puts equal priority on throughput and fairness — the
	// reference ceiling for all reported results.
	Balanced Goal = iota
	// Throughput maximizes only system throughput (W_T=1, W_F=0).
	Throughput
	// Fairness maximizes only fairness (W_T=0, W_F=1).
	Fairness
)

// Weights returns the (W_T, W_F) pair of the goal.
func (g Goal) Weights() (wT, wF float64) {
	switch g {
	case Throughput:
		return 1, 0
	case Fairness:
		return 0, 1
	default:
		return 0.5, 0.5
	}
}

// String names the goal.
func (g Goal) String() string {
	switch g {
	case Throughput:
		return "throughput-oracle"
	case Fairness:
		return "fairness-oracle"
	default:
		return "balanced-oracle"
	}
}

// Options tunes the search.
type Options struct {
	// ExactLimit is the largest space size searched exhaustively
	// (default 20,000 configurations).
	ExactLimit float64
	// Restarts is the number of random hill-climb restarts for large
	// spaces, in addition to the equal-split and incumbent starts
	// (default 4).
	Restarts int
	// Probes is the number of uniform random configurations scored as
	// extra candidate starts (default 256).
	Probes int
	// Seed drives the restart randomness.
	Seed uint64
	// ThroughputMetric and FairnessMetric select the objective
	// formulas. The zero values are the metrics package's Default*
	// sentinels, resolving to the paper's evaluation pairing
	// (sum-of-IPS + Jain's index).
	ThroughputMetric metrics.ThroughputMetric
	FairnessMetric   metrics.FairnessMetric
}

func (o *Options) fill() {
	if o.ExactLimit <= 0 {
		o.ExactLimit = 20000
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.Probes <= 0 {
		o.Probes = 256
	}
}

// Searcher finds optimal configurations on a simulator's noise-free
// model.
type Searcher struct {
	sim   *sim.Simulator
	space *resource.Space
	opt   Options
	rng   *stats.RNG
	small bool
}

// NewSearcher builds a searcher over s.
func NewSearcher(s *sim.Simulator, opt Options) *Searcher {
	opt.fill()
	return &Searcher{
		sim:   s,
		space: s.Space(),
		opt:   opt,
		rng:   stats.NewRNG(opt.Seed ^ 0x0AC1E),
		small: s.Space().Size() <= opt.ExactLimit,
	}
}

// objective scores a configuration under (wT, wF) on the noise-free model
// at the jobs' current phases.
func (s *Searcher) objective(c resource.Config, wT, wF float64) float64 {
	ips, err := s.sim.ExactIPS(c)
	if err != nil {
		return math.Inf(-1)
	}
	iso := s.sim.ExactIsolated()
	t := metrics.NormalizedThroughput(s.opt.ThroughputMetric, ips, iso)
	f := metrics.NormalizedFairness(s.opt.FairnessMetric, ips, iso)
	return wT*t + wF*f
}

// Search returns the best configuration found for the weight pair at the
// simulator's current phase state, along with its objective value.
func (s *Searcher) Search(wT, wF float64) (resource.Config, float64) {
	if s.small {
		return s.exhaustive(wT, wF)
	}
	return s.hillClimb(wT, wF)
}

func (s *Searcher) exhaustive(wT, wF float64) (resource.Config, float64) {
	var best resource.Config
	bestVal := math.Inf(-1)
	s.space.Enumerate(func(c resource.Config) bool {
		if v := s.objective(c, wT, wF); v > bestVal {
			bestVal = v
			best = c.Clone()
		}
		return true
	})
	return best, bestVal
}

func (s *Searcher) hillClimb(wT, wF float64) (resource.Config, float64) {
	// Candidate starts: equal split, the best of a random probe pool,
	// and a few random restarts.
	starts := []resource.Config{s.space.EqualSplit()}
	var bestProbe resource.Config
	bestProbeVal := math.Inf(-1)
	for i := 0; i < s.opt.Probes; i++ {
		c := s.space.Random(s.rng)
		if v := s.objective(c, wT, wF); v > bestProbeVal {
			bestProbeVal = v
			bestProbe = c
		}
	}
	if bestProbeVal > math.Inf(-1) {
		starts = append(starts, bestProbe)
	}
	for i := 0; i < s.opt.Restarts; i++ {
		starts = append(starts, s.space.Random(s.rng))
	}

	var best resource.Config
	bestVal := math.Inf(-1)
	for _, start := range starts {
		c, v := s.climb(start, wT, wF)
		if v > bestVal {
			bestVal = v
			best = c
		}
	}
	return best, bestVal
}

// climb performs steepest-ascent over the one-unit-move neighborhood.
func (s *Searcher) climb(start resource.Config, wT, wF float64) (resource.Config, float64) {
	cur := start.Clone()
	curVal := s.objective(cur, wT, wF)
	for iter := 0; iter < 400; iter++ {
		improved := false
		for _, n := range s.space.Neighbors(cur) {
			if v := s.objective(n, wT, wF); v > curVal+1e-12 {
				cur, curVal = n, v
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, curVal
}

// phaseKey identifies the joint phase state of all jobs; the optimum only
// moves when this changes.
func (s *Searcher) phaseKey() string {
	var b strings.Builder
	for j := 0; j < s.sim.NumJobs(); j++ {
		b.WriteString(strconv.Itoa(j))
		b.WriteByte(':')
		b.WriteString(s.sim.PhaseName(j))
		b.WriteByte('|')
	}
	return b.String()
}

// Policy wraps a Searcher as a policy.Policy, re-searching only when some
// job's phase changes (cached per joint phase state).
type Policy struct {
	goal     Goal
	searcher *Searcher
	cache    map[string]resource.Config
}

// New builds an oracle policy of the given goal over simulator s.
func New(goal Goal, s *sim.Simulator, opt Options) *Policy {
	return &Policy{
		goal:     goal,
		searcher: NewSearcher(s, opt),
		cache:    make(map[string]resource.Config),
	}
}

// Name implements policy.Policy.
func (p *Policy) Name() string { return p.goal.String() }

// Decide implements policy.Policy.
func (p *Policy) Decide(_ policy.Observation, current resource.Config) resource.Config {
	key := p.searcher.phaseKey()
	if c, ok := p.cache[key]; ok {
		return c
	}
	wT, wF := p.goal.Weights()
	best, _ := p.searcher.Search(wT, wF)
	if best.Alloc == nil {
		return current
	}
	p.cache[key] = best
	return best
}
