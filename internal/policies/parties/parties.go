// Package parties reimplements the PARTIES baseline (Chen et al.,
// ASPLOS'19 [12] in the paper's numbering), adapted exactly as Sec. IV of
// the SATORI paper describes: PARTIES' gradient-descent-style controller —
// which adjusts one resource dimension at a time with upsize/downsize
// probes and keeps a change only if it helped — re-targeted from QoS of
// latency-critical services to the balanced objective
// 0.5·throughput + 0.5·fairness over throughput-oriented jobs.
//
// The search structure is the defining feature preserved here: resources
// are explored strictly one dimension at a time (never jointly), each
// probe transfers one unit from the currently least-deserving job to the
// most-deserving one, the result is measured for an epoch, and failed
// probes are rolled back before moving on to the next resource dimension.
// This is the "gradient descent method" whose susceptibility to local
// maxima SATORI's joint BO exploration is designed to overcome.
package parties

import (
	"satori/internal/policies/common"
	"satori/internal/policy"
	"satori/internal/resource"
)

type state int

const (
	measuring state = iota
	probing
	idle
)

// Policy is the adapted-PARTIES controller.
type Policy struct {
	space *resource.Space
	epoch *common.Epoch

	st        state
	baseScore float64
	saved     resource.Config
	dim       int // resource dimension currently being explored
	failed    int // consecutive dimensions without improvement
	probeAlt  int // alternates receiver selection to escape ties
	idleLeft  int
	idleSpan  int
}

// Options tunes the policy.
type Options struct {
	// EpochTicks is the measurement window per probe in 100 ms
	// intervals (default 5 = 0.5 s; PARTIES also uses sub-second
	// adjustment periods).
	EpochTicks int
	// IdleEpochs is the hold time after a full no-improvement sweep of
	// every dimension (default 10 epochs).
	IdleEpochs int
}

// New builds the policy over space.
func New(space *resource.Space, opt Options) *Policy {
	if opt.EpochTicks <= 0 {
		opt.EpochTicks = 5
	}
	if opt.IdleEpochs <= 0 {
		opt.IdleEpochs = 10
	}
	return &Policy{
		space:    space,
		epoch:    common.NewEpoch(opt.EpochTicks),
		idleSpan: opt.IdleEpochs * opt.EpochTicks,
	}
}

// Name implements policy.Policy.
func (p *Policy) Name() string { return "parties" }

// Decide implements policy.Policy.
func (p *Policy) Decide(obs policy.Observation, current resource.Config) resource.Config {
	if obs.BaselineReset {
		p.st = measuring
		p.epoch.Reset()
		p.failed = 0
		p.idleLeft = 0
	}
	score := common.BalancedObjective(obs)
	switch p.st {
	case idle:
		p.idleLeft--
		if p.idleLeft <= 0 {
			p.st = measuring
			p.epoch.Reset()
		}
		return current

	case measuring:
		mean, done := p.epoch.Add(score)
		if !done {
			return current
		}
		p.baseScore = mean
		return p.startProbe(current, obs.Speedups)

	case probing:
		mean, done := p.epoch.Add(score)
		if !done {
			return current
		}
		if mean > p.baseScore {
			// Keep the upsize and keep descending along the
			// gradient; a success re-opens all dimensions.
			p.baseScore = mean
			p.failed = 0
			return p.startProbe(current, obs.Speedups)
		}
		// Roll back, then move to the next resource dimension.
		p.failed++
		p.dim = (p.dim + 1) % len(p.space.Resources)
		if p.failed >= 2*len(p.space.Resources) {
			// A full sweep (with both receiver choices) found
			// nothing: hold until the workload moves.
			p.st = idle
			p.idleLeft = p.idleSpan
			p.failed = 0
			return p.saved
		}
		return p.startProbe(p.saved, obs.Speedups)
	}
	return current
}

// startProbe transfers one unit of the active dimension from the
// best-performing job to a needy job and starts measuring. The receiver
// alternates between the slowest job (fairness pressure) and the job just
// above it (throughput pressure) so ties do not wedge the search.
func (p *Policy) startProbe(base resource.Config, speedups []float64) resource.Config {
	for tries := 0; tries < len(p.space.Resources); tries++ {
		slow, fast := common.ArgMinMax(speedups)
		recv := slow
		if p.probeAlt%2 == 1 {
			// Second-neediest job as alternate receiver.
			recv = secondSlowest(speedups, slow)
		}
		p.probeAlt++
		if recv == fast {
			recv = slow
		}
		next, ok := p.space.Move(base, p.dim, fast, recv)
		if !ok {
			// Donor at floor in this dimension; find any donor.
			donor := richestDonor(base.Alloc[p.dim], speedups, recv)
			if donor >= 0 {
				next, ok = p.space.Move(base, p.dim, donor, recv)
			}
		}
		if ok {
			p.saved = base.Clone()
			p.st = probing
			p.epoch.Reset()
			return next
		}
		// No legal move in this dimension at all; advance.
		p.dim = (p.dim + 1) % len(p.space.Resources)
	}
	p.st = idle
	p.idleLeft = p.idleSpan
	return base
}

// secondSlowest returns the index of the second-smallest speedup.
func secondSlowest(speedups []float64, slowest int) int {
	best := -1
	for j, s := range speedups {
		if j == slowest {
			continue
		}
		if best < 0 || s < speedups[best] {
			best = j
		}
	}
	if best < 0 {
		return slowest
	}
	return best
}

// richestDonor returns the fastest job that still has more than one unit
// in row, excluding recv; -1 when none exists.
func richestDonor(row []int, speedups []float64, recv int) int {
	donor := -1
	for j, units := range row {
		if j == recv || units <= 1 {
			continue
		}
		if donor < 0 || speedups[j] > speedups[donor] {
			donor = j
		}
	}
	return donor
}
