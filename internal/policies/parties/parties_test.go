package parties

import (
	"testing"

	"satori/internal/policy"
	"satori/internal/resource"
)

func testSpace() *resource.Space {
	return resource.MustNewSpace(3,
		resource.Resource{Kind: resource.Cores, Units: 9},
		resource.Resource{Kind: resource.LLCWays, Units: 8},
		resource.Resource{Kind: resource.MemBW, Units: 7},
	)
}

// env: job 0 converts every resource into both speedup and objective;
// jobs 1 and 2 are insensitive and fast.
func observe(space *resource.Space, tick int, c resource.Config, reset bool) policy.Observation {
	units0 := float64(c.Alloc[0][0] + c.Alloc[1][0] + c.Alloc[2][0])
	sp := []float64{0.05 * units0, 0.7, 0.65}
	obj := 0.3 + 0.02*units0
	return policy.Observation{
		Tick: tick, Speedups: sp,
		Throughput: obj, Fairness: obj + 0.3,
		BaselineReset: reset,
	}
}

func TestProducesValidConfigs(t *testing.T) {
	space := testSpace()
	p := New(space, Options{EpochTicks: 2})
	if p.Name() != "parties" {
		t.Error("name wrong")
	}
	cur := space.EqualSplit()
	for tick := 1; tick <= 300; tick++ {
		next := p.Decide(observe(space, tick, cur, tick == 1), cur)
		if err := space.Validate(next); err != nil {
			t.Fatalf("invalid config at %d: %v", tick, err)
		}
		cur = next
	}
}

func TestGradientDescentUpsizesNeedyJob(t *testing.T) {
	space := testSpace()
	p := New(space, Options{EpochTicks: 2})
	cur := space.EqualSplit()
	for tick := 1; tick <= 500; tick++ {
		cur = p.Decide(observe(space, tick, cur, tick == 1), cur)
	}
	total0 := cur.Alloc[0][0] + cur.Alloc[1][0] + cur.Alloc[2][0]
	eq := space.EqualSplit()
	totalEq := eq.Alloc[0][0] + eq.Alloc[1][0] + eq.Alloc[2][0]
	if total0 <= totalEq {
		t.Errorf("needy job did not gain resources: %d units vs %d at equal split", total0, totalEq)
	}
}

func TestOneDimensionAtATime(t *testing.T) {
	// PARTIES' defining property: each probe adjusts a single resource
	// dimension. A step may combine the rollback of a failed probe with
	// the next dimension's probe, so consecutive configurations differ
	// in at most two rows — never all three at once (which would be
	// joint multi-resource exploration, SATORI's territory).
	space := testSpace()
	p := New(space, Options{EpochTicks: 1})
	cur := space.EqualSplit()
	for tick := 1; tick <= 200; tick++ {
		next := p.Decide(observe(space, tick, cur, tick == 1), cur)
		changedRows := 0
		for r := range next.Alloc {
			for j := range next.Alloc[r] {
				if next.Alloc[r][j] != cur.Alloc[r][j] {
					changedRows++
					break
				}
			}
		}
		if changedRows > 2 {
			t.Fatalf("tick %d: %d resource rows changed in one step", tick, changedRows)
		}
		cur = next
	}
}

func TestIdlesWhenNothingHelps(t *testing.T) {
	space := testSpace()
	p := New(space, Options{EpochTicks: 1, IdleEpochs: 5})
	flat := func(tick int, reset bool) policy.Observation {
		return policy.Observation{
			Tick: tick, Speedups: []float64{0.5, 0.5, 0.5},
			Throughput: 0.5, Fairness: 0.9, BaselineReset: reset,
		}
	}
	start := space.EqualSplit()
	cur := start
	holds := 0
	atStart := 0
	var prev resource.Config
	for tick := 1; tick <= 400; tick++ {
		next := p.Decide(flat(tick, tick == 1), cur)
		if prev.Alloc != nil && next.Equal(prev) {
			holds++
		}
		if next.Equal(start) {
			atStart++
		}
		prev = next
		cur = next
	}
	// A policy that finds no improvement must spend a substantial part
	// of its time holding (idle periods) rather than thrashing, and
	// every failed probe must be rolled back, so the start config is
	// where it keeps returning.
	if holds < 120 {
		t.Errorf("policy held only %d of 400 ticks in a flat environment", holds)
	}
	if atStart < 150 {
		t.Errorf("policy was at the start config only %d of 400 ticks; rollbacks broken?", atStart)
	}
}

func TestBaselineResetRestartsSearch(t *testing.T) {
	space := testSpace()
	p := New(space, Options{EpochTicks: 2})
	cur := space.EqualSplit()
	for tick := 1; tick <= 150; tick++ {
		reset := tick == 1 || tick == 75
		cur = p.Decide(observe(space, tick, cur, reset), cur)
		if err := space.Validate(cur); err != nil {
			t.Fatalf("invalid config after reset: %v", err)
		}
	}
}
