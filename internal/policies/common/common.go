// Package common holds small helpers shared by the baseline partitioning
// policies (dCAT, CoPart, PARTIES): epoch-mean accumulation for
// trial-and-revert search, and speedup-ordering utilities.
package common

import "satori/internal/policy"

// Epoch accumulates a scalar score over a fixed number of ticks and
// reports its mean — the measurement quantum all trial-and-revert
// baselines use to judge whether a configuration change helped.
type Epoch struct {
	ticks int
	sum   float64
	n     int
}

// NewEpoch returns an accumulator spanning ticks observations (minimum 1).
func NewEpoch(ticks int) *Epoch {
	if ticks < 1 {
		ticks = 1
	}
	return &Epoch{ticks: ticks}
}

// Add folds one observation score. It returns the epoch mean and true
// when the epoch just completed; the accumulator resets automatically.
func (e *Epoch) Add(score float64) (mean float64, done bool) {
	e.sum += score
	e.n++
	if e.n < e.ticks {
		return 0, false
	}
	mean = e.sum / float64(e.n)
	e.sum, e.n = 0, 0
	return mean, true
}

// Reset discards any partial accumulation.
func (e *Epoch) Reset() { e.sum, e.n = 0, 0 }

// Ticks returns the epoch length.
func (e *Epoch) Ticks() int { return e.ticks }

// ArgMinMax returns the indices of the smallest and largest values.
// It panics on an empty slice.
func ArgMinMax(xs []float64) (argmin, argmax int) {
	if len(xs) == 0 {
		panic("common: ArgMinMax of empty slice")
	}
	for i, x := range xs {
		if x < xs[argmin] {
			argmin = i
		}
		if x > xs[argmax] {
			argmax = i
		}
	}
	return argmin, argmax
}

// BalancedObjective is the modified-PARTIES objective of Sec. IV: equal
// priority on normalized throughput and fairness.
func BalancedObjective(obs policy.Observation) float64 {
	return 0.5*obs.Throughput + 0.5*obs.Fairness
}
