package common

import (
	"testing"

	"satori/internal/policy"
)

func TestEpochAccumulation(t *testing.T) {
	e := NewEpoch(3)
	if _, done := e.Add(1); done {
		t.Fatal("epoch completed early")
	}
	if _, done := e.Add(2); done {
		t.Fatal("epoch completed early")
	}
	mean, done := e.Add(3)
	if !done || mean != 2 {
		t.Fatalf("epoch end: mean=%g done=%v", mean, done)
	}
	// Auto-reset: the next epoch starts clean.
	e.Add(10)
	e.Add(10)
	mean, done = e.Add(10)
	if !done || mean != 10 {
		t.Fatalf("second epoch: mean=%g done=%v", mean, done)
	}
}

func TestEpochReset(t *testing.T) {
	e := NewEpoch(2)
	e.Add(100)
	e.Reset()
	if _, done := e.Add(1); done {
		t.Fatal("Reset did not clear partial state")
	}
	if mean, done := e.Add(3); !done || mean != 2 {
		t.Fatalf("post-reset epoch wrong: %g %v", mean, done)
	}
}

func TestEpochMinimumLength(t *testing.T) {
	e := NewEpoch(0)
	if e.Ticks() != 1 {
		t.Errorf("Ticks = %d, want 1", e.Ticks())
	}
	if mean, done := e.Add(7); !done || mean != 7 {
		t.Error("length-1 epoch should complete immediately")
	}
}

func TestArgMinMax(t *testing.T) {
	min, max := ArgMinMax([]float64{3, 1, 4, 1.5, 9})
	if min != 1 || max != 4 {
		t.Errorf("ArgMinMax = (%d, %d), want (1, 4)", min, max)
	}
	min, max = ArgMinMax([]float64{5})
	if min != 0 || max != 0 {
		t.Errorf("single element: (%d, %d)", min, max)
	}
}

func TestArgMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty slice did not panic")
		}
	}()
	ArgMinMax(nil)
}

func TestBalancedObjective(t *testing.T) {
	obs := policy.Observation{Throughput: 0.4, Fairness: 0.8}
	if got := BalancedObjective(obs); got < 0.6-1e-12 || got > 0.6+1e-12 {
		t.Errorf("BalancedObjective = %g, want 0.6", got)
	}
}
