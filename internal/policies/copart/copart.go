// Package copart reimplements the CoPart baseline (Park et al.,
// EuroSys'19 [66] in the paper's numbering): coordinated partitioning of
// the last-level cache and memory bandwidth for fairness-aware workload
// consolidation.
//
// CoPart's structure — preserved here — is two separate finite state
// machines, one per resource, that are not joint but are aware of each
// other's decisions. Each FSM periodically inspects the per-job slowdowns
// and transfers one unit of its resource from the least-slowed job to the
// most-slowed job when the slowdown gap exceeds a hysteresis threshold.
// The FSMs alternate (so at most one resource moves per epoch) and share
// the decision history: an FSM skips its turn while the other FSM's
// transfer for the same needy job is still settling, which is the
// cross-FSM communication the paper describes.
package copart

import (
	"fmt"

	"satori/internal/policies/common"
	"satori/internal/policy"
	"satori/internal/resource"
)

// fsm is the per-resource state machine.
type fsm struct {
	row     int // resource row in the space
	kind    resource.Kind
	settled bool // false while this FSM's last transfer is settling
	lastTo  int  // receiver of the FSM's last transfer

	// Pending sensitivity check for the FSM's last transfer: CoPart
	// classifies applications by whether they actually respond to a
	// resource; a transfer whose receiver did not speed up is undone
	// (by the inverse move on this FSM's own row, so the other FSM's
	// interleaved decisions are untouched) and the (receiver, resource)
	// pair is cooled down.
	pending     bool
	prevSpeedup float64
	lastFrom    int         // donor of the FSM's last transfer
	cooldown    map[int]int // receiver job -> epochs left insensitive
}

// Policy is the CoPart dual-FSM engine.
type Policy struct {
	space *resource.Space
	fsms  []*fsm
	epoch *common.Epoch
	turn  int
	// gap is the minimum speedup spread (max−min) that triggers a
	// transfer; below it the partition is considered fair enough.
	gap float64
	// coolEpochs is how long a receiver stays classified insensitive
	// to a resource after a transfer of it failed to help.
	coolEpochs int
}

// Options tunes the policy.
type Options struct {
	// EpochTicks is the FSM decision period in 100 ms intervals
	// (default 5 = 0.5 s, CoPart's reaction granularity).
	EpochTicks int
	// SlowdownGap is the fairness hysteresis threshold on the
	// max−min speedup spread (default 0.10).
	SlowdownGap float64
}

// New builds a CoPart policy. The space must contain LLC ways and memory
// bandwidth (the two resources CoPart manages); any other resources stay
// at their initial partition.
func New(space *resource.Space, opt Options) (*Policy, error) {
	var fsms []*fsm
	for i, r := range space.Resources {
		if r.Kind == resource.LLCWays || r.Kind == resource.MemBW {
			fsms = append(fsms, &fsm{
				row: i, kind: r.Kind, settled: true,
				cooldown: make(map[int]int),
			})
		}
	}
	if len(fsms) != 2 {
		return nil, fmt.Errorf("copart: space must contain llc-ways and mem-bw, found %d of them", len(fsms))
	}
	if opt.EpochTicks <= 0 {
		opt.EpochTicks = 5
	}
	if opt.SlowdownGap <= 0 {
		opt.SlowdownGap = 0.10
	}
	return &Policy{
		space:      space,
		fsms:       fsms,
		epoch:      common.NewEpoch(opt.EpochTicks),
		gap:        opt.SlowdownGap,
		coolEpochs: 20,
	}, nil
}

// Name implements policy.Policy.
func (p *Policy) Name() string { return "copart" }

// Decide implements policy.Policy.
func (p *Policy) Decide(obs policy.Observation, current resource.Config) resource.Config {
	if obs.BaselineReset {
		p.epoch.Reset()
		for _, f := range p.fsms {
			f.settled = true
			f.pending = false
			f.cooldown = make(map[int]int)
		}
	}
	if _, done := p.epoch.Add(0); !done {
		return current
	}
	// One FSM acts per epoch; the other observes. A transfer made in
	// the previous epoch has now had one full epoch to settle.
	for _, f := range p.fsms {
		f.settled = true
		for j := range f.cooldown {
			if f.cooldown[j]--; f.cooldown[j] <= 0 {
				delete(f.cooldown, j)
			}
		}
	}
	f := p.fsms[p.turn%len(p.fsms)]
	p.turn++

	// Sensitivity classification: check the FSM's previous transfer.
	// If the receiver did not respond to the extra resource, undo the
	// transfer and classify the job insensitive to it for a while.
	if f.pending {
		f.pending = false
		if obs.Speedups[f.lastTo] < f.prevSpeedup+0.01 {
			f.cooldown[f.lastTo] = p.coolEpochs
			if undone, ok := p.space.Move(current, f.row, f.lastTo, f.lastFrom); ok {
				return undone
			}
		}
	}

	slow, fast := common.ArgMinMax(obs.Speedups)
	if obs.Speedups[fast]-obs.Speedups[slow] < p.gap {
		return current // fair enough; hold
	}
	// Pick the most-slowed job not currently classified insensitive to
	// this FSM's resource.
	recv := -1
	for j := range obs.Speedups {
		if _, cooled := f.cooldown[j]; cooled {
			continue
		}
		if recv < 0 || obs.Speedups[j] < obs.Speedups[recv] {
			recv = j
		}
	}
	if recv < 0 || recv == fast {
		return current
	}
	// Cross-FSM awareness: if the other FSM just boosted this same
	// needy job, wait for that to take effect before piling on.
	other := p.fsms[p.turn%len(p.fsms)]
	if !other.settled && other.lastTo == recv {
		return current
	}
	from := fast
	next, ok := p.space.Move(current, f.row, from, recv)
	if !ok {
		// The least-slowed job has nothing left to give in this
		// resource; try the next-fastest donor.
		from = -1
		best := -1.0
		for j, s := range obs.Speedups {
			if j == recv || current.Alloc[f.row][j] <= 1 {
				continue
			}
			if s > best {
				best, from = s, j
			}
		}
		if from < 0 {
			return current
		}
		next, ok = p.space.Move(current, f.row, from, recv)
		if !ok {
			return current
		}
	}
	f.settled = false
	f.lastTo = recv
	f.lastFrom = from
	f.pending = true
	f.prevSpeedup = obs.Speedups[recv]
	return next
}
