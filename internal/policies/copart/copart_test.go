package copart

import (
	"testing"

	"satori/internal/policy"
	"satori/internal/resource"
)

func testSpace() *resource.Space {
	return resource.MustNewSpace(3,
		resource.Resource{Kind: resource.Cores, Units: 6},
		resource.Resource{Kind: resource.LLCWays, Units: 8},
		resource.Resource{Kind: resource.MemBW, Units: 8},
	)
}

func TestNewValidation(t *testing.T) {
	onlyCores := resource.MustNewSpace(2, resource.Resource{Kind: resource.Cores, Units: 4})
	if _, err := New(onlyCores, Options{}); err == nil {
		t.Error("space without LLC+BW accepted")
	}
	noBW := resource.MustNewSpace(2,
		resource.Resource{Kind: resource.Cores, Units: 4},
		resource.Resource{Kind: resource.LLCWays, Units: 4})
	if _, err := New(noBW, Options{}); err == nil {
		t.Error("space without mem-bw accepted")
	}
	p, err := New(testSpace(), Options{})
	if err != nil || p.Name() != "copart" {
		t.Fatalf("valid space rejected: %v", err)
	}
}

// sensitiveEnv: job 0 is slowed and responds to both ways and bandwidth;
// jobs 1 and 2 run fast.
func sensitiveEnv(c resource.Config) []float64 {
	ways0 := float64(c.Alloc[1][0])
	bw0 := float64(c.Alloc[2][0])
	return []float64{0.10 + 0.04*ways0 + 0.03*bw0, 0.75, 0.70}
}

func TestTransfersResourcesToSlowedJob(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 2, SlowdownGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cur := space.EqualSplit()
	equal := space.EqualSplit()
	for tick := 1; tick <= 400; tick++ {
		sp := sensitiveEnv(cur)
		obs := policy.Observation{
			Tick: tick, Speedups: sp,
			Throughput: 0.4, Fairness: 0.8, BaselineReset: tick == 1,
		}
		next := p.Decide(obs, cur)
		if err := space.Validate(next); err != nil {
			t.Fatalf("invalid config: %v", err)
		}
		// CoPart never touches cores.
		for j := range next.Alloc[0] {
			if next.Alloc[0][j] != equal.Alloc[0][j] {
				t.Fatalf("tick %d: CoPart changed the cores row", tick)
			}
		}
		cur = next
	}
	if cur.Alloc[1][0] <= equal.Alloc[1][0] && cur.Alloc[2][0] <= equal.Alloc[2][0] {
		t.Errorf("slowed job received nothing: ways=%d bw=%d", cur.Alloc[1][0], cur.Alloc[2][0])
	}
}

func TestInsensitiveReceiverIsRevertedAndCooled(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 1, SlowdownGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 is slow but completely insensitive: transfers never help,
	// so CoPart must revert them and stop piling resources on job 0.
	insensitive := func(resource.Config) []float64 { return []float64{0.2, 0.7, 0.7} }
	cur := space.EqualSplit()
	for tick := 1; tick <= 300; tick++ {
		obs := policy.Observation{
			Tick: tick, Speedups: insensitive(cur),
			Throughput: 0.4, Fairness: 0.8, BaselineReset: tick == 1,
		}
		cur = p.Decide(obs, cur)
	}
	// The classification must have prevented unbounded accumulation:
	// job 0 cannot hold nearly all units of ways or bandwidth.
	if cur.Alloc[1][0] > 5 || cur.Alloc[2][0] > 5 {
		t.Errorf("insensitive job accumulated resources: ways=%d bw=%d", cur.Alloc[1][0], cur.Alloc[2][0])
	}
}

func TestHoldsWhenFairEnough(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 1, SlowdownGap: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	cur := space.EqualSplit()
	for tick := 1; tick <= 50; tick++ {
		obs := policy.Observation{
			Tick: tick, Speedups: []float64{0.50, 0.52, 0.49},
			Throughput: 0.5, Fairness: 0.99, BaselineReset: tick == 1,
		}
		next := p.Decide(obs, cur)
		if !next.Equal(cur) {
			t.Fatalf("tick %d: policy acted despite gap below threshold", tick)
		}
	}
}

func TestBaselineResetClearsState(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	cur := space.EqualSplit()
	for tick := 1; tick <= 120; tick++ {
		reset := tick == 1 || tick == 60
		obs := policy.Observation{
			Tick: tick, Speedups: sensitiveEnv(cur),
			Throughput: 0.4, Fairness: 0.8, BaselineReset: reset,
		}
		cur = p.Decide(obs, cur)
		if err := space.Validate(cur); err != nil {
			t.Fatalf("invalid config after reset: %v", err)
		}
	}
}
